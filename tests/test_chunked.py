"""Chunked map-merge statistics and out-of-core ingest.

The central contract under test: for every registered measure, on both
statistics backends, ``compute_chunked`` (any chunk size, serial or
process-pool) produces ``FdStatistics`` **bit-identical** (``==``, same
``Counter`` key order) to the monolithic scan — so chunking is purely an
execution strategy, never a semantics change.  Alongside it: the
streamed CSV ingest (``ChunkedRelation.read_csv``) matches ``read_csv``
row for row, NaN cells become NULL, ``max_rows``/``.gz`` work, and the
out-of-core path actually stays out of core (tracemalloc peak guard).

Tests that need numpy are marked; the remainder also run in the
no-numpy CI job.
"""

import gzip
import random
import tracemalloc

import pytest

from repro.core import all_measures
from repro.core.chunked import compute_chunked
from repro.core.partial import PartialFdCounts, merge_counts
from repro.core.statistics import FdStatistics
from repro.relation import ChunkedRelation, FunctionalDependency, Relation
from repro.relation.io import read_csv, stream_csv_rows, write_csv

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


# ----------------------------------------------------------------------
# Relation generators (randomised property-test inputs)
# ----------------------------------------------------------------------
def random_relation(seed: int, num_rows: int = 400) -> Relation:
    rng = random.Random(seed)
    rows = [
        (rng.randrange(12), rng.randrange(6), rng.randrange(20))
        for _ in range(num_rows)
    ]
    return Relation(("A", "B", "C"), rows, name=f"random-{seed}")


def null_relation(seed: int, num_rows: int = 400) -> Relation:
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        rows.append(
            (
                rng.choice([None, "a", "b", "c", 1, 2.5]),
                None if rng.random() < 0.25 else rng.randrange(8),
                rng.choice(["x", "y", None]),
            )
        )
    return Relation(("A", "B", "C"), rows, name=f"null-{seed}")


def skewed_relation(seed: int, num_rows: int = 400) -> Relation:
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        # One dominant LHS value, a long tail, a near-determined RHS.
        a = 0 if rng.random() < 0.7 else rng.randrange(1, 50)
        b = a % 5 if rng.random() < 0.9 else rng.randrange(5)
        rows.append((a, b, rng.randrange(3)))
    return Relation(("A", "B", "C"), rows, name=f"skewed-{seed}")


RELATION_BUILDERS = [random_relation, null_relation, skewed_relation]
FD = FunctionalDependency(("A",), ("B",))


def assert_identical(chunked: FdStatistics, monolithic: FdStatistics) -> None:
    """``==`` plus explicit key-order checks (the bit-identity contract)."""
    assert chunked == monolithic
    assert list(chunked.xy_counts.items()) == list(monolithic.xy_counts.items())
    assert list(chunked.full_tuple_counts.items()) == list(
        monolithic.full_tuple_counts.items()
    )


# ----------------------------------------------------------------------
# Mergeable partials
# ----------------------------------------------------------------------
class TestPartialCounts:
    def test_merge_counts_adds_and_preserves_first_occurrence_order(self):
        target = {("a",): 2, ("b",): 1}
        merge_counts(target, {("b",): 4, ("c",): 3})
        assert target == {("a",): 2, ("b",): 5, ("c",): 3}
        assert list(target) == [("a",), ("b",), ("c",)]

    def test_merge_is_in_place_and_returns_self(self):
        left = PartialFdCounts.empty()
        left.num_rows = 2
        left.xy_counts[((0,), (1,))] = 2
        right = PartialFdCounts.empty()
        right.num_rows = 3
        right.xy_counts[((0,), (1,))] = 1
        right.xy_counts[((2,), (1,))] = 2
        result = left.merge(right)
        assert result is left
        assert left.num_rows == 5
        assert dict(left.xy_counts) == {((0,), (1,)): 3, ((2,), (1,)): 2}

    def test_merge_all_equals_sequential_merges(self):
        parts = []
        for offset in range(3):
            part = PartialFdCounts.empty()
            part.num_rows = offset + 1
            part.xy_counts[((offset,), (0,))] = offset + 1
            part.full_tuple_counts[(offset, 0)] = offset + 1
            parts.append(part)
        merged = PartialFdCounts.merge_all(parts)
        assert merged.num_rows == 6
        assert list(merged.xy_counts) == [((0,), (0,)), ((1,), (0,)), ((2,), (0,))]


# ----------------------------------------------------------------------
# The bit-identity property: chunked == monolithic
# ----------------------------------------------------------------------
class TestChunkedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("builder", RELATION_BUILDERS)
    @pytest.mark.parametrize("chunk_size", [1, 7, 1000])
    def test_statistics_identical_across_chunk_sizes(self, backend, builder, chunk_size):
        relation = builder(seed=chunk_size)
        monolithic = FdStatistics.compute(relation, FD, backend=backend)
        chunked = compute_chunked(relation, FD, chunk_size=chunk_size, backend=backend)
        assert_identical(chunked, monolithic)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunk_size_larger_than_relation(self, backend):
        relation = null_relation(seed=5, num_rows=120)
        monolithic = FdStatistics.compute(relation, FD, backend=backend)
        chunked = compute_chunked(relation, FD, chunk_size=10_000, backend=backend)
        assert_identical(chunked, monolithic)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("builder", RELATION_BUILDERS)
    def test_all_measures_score_identically(self, backend, builder):
        relation = builder(seed=17)
        monolithic = FdStatistics.compute(relation, FD, backend=backend)
        chunked = compute_chunked(relation, FD, chunk_size=61, backend=backend)
        for name, measure in all_measures().items():
            assert measure.score_from_statistics(chunked) == measure.score_from_statistics(
                monolithic
            ), name

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_covering_fd_fast_path(self, backend):
        # fd.lhs + fd.rhs == schema triggers the re-keyed full-tuple path.
        rng = random.Random(3)
        relation = Relation(
            ("X", "Y"),
            [(rng.randrange(30), rng.choice(["u", "v", None])) for _ in range(500)],
            name="covering",
        )
        fd = FunctionalDependency(("X",), ("Y",))
        monolithic = FdStatistics.compute(relation, fd, backend=backend)
        assert_identical(
            compute_chunked(relation, fd, chunk_size=37, backend=backend), monolithic
        )
        # The reversed FD does NOT cover the schema in order; generic path.
        fd_reversed = FunctionalDependency(("Y",), ("X",))
        assert_identical(
            compute_chunked(relation, fd_reversed, chunk_size=37, backend=backend),
            FdStatistics.compute(relation, fd_reversed, backend=backend),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("jobs", [4])
    def test_process_pool_identical_to_serial(self, backend, jobs):
        relation = null_relation(seed=23, num_rows=1500)
        monolithic = FdStatistics.compute(relation, FD, backend=backend)
        chunked = compute_chunked(
            relation, FD, chunk_size=100, jobs=jobs, backend=backend
        )
        assert_identical(chunked, monolithic)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunked_relation_source(self, backend):
        relation = null_relation(seed=31)
        store = ChunkedRelation.from_relation(relation, chunk_size=53)
        monolithic = FdStatistics.compute(relation, FD, backend=backend)
        assert_identical(compute_chunked(store, FD, backend=backend), monolithic)

    def test_compute_dispatches_on_chunk_knobs(self):
        relation = random_relation(seed=41, num_rows=200)
        monolithic = FdStatistics.compute(relation, FD)
        via_compute = FdStatistics.compute(relation, FD, chunk_size=19)
        assert_identical(via_compute, monolithic)
        store = ChunkedRelation.from_relation(relation, chunk_size=19)
        assert_identical(FdStatistics.compute(store, FD), monolithic)

    def test_jobs_degrade_serial_inside_daemonic_process(self):
        # The service's forked shard workers are daemonic and may not
        # have children; jobs>1 must degrade to the (bit-identical)
        # serial merge there instead of crashing the request.
        import multiprocessing

        def worker(queue):
            relation = Relation(("A", "B"), [(i % 5, i % 3) for i in range(200)])
            statistics = compute_chunked(
                relation, FunctionalDependency(("A",), ("B",)), chunk_size=32, jobs=2
            )
            queue.put(statistics.num_rows)

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        process = context.Process(target=worker, args=(queue,), daemon=True)
        process.start()
        process.join(timeout=30)
        assert queue.get(timeout=5) == 200

    def test_unknown_attribute_raises(self):
        relation = random_relation(seed=1, num_rows=10)
        with pytest.raises(KeyError, match="not in relation schema"):
            compute_chunked(relation, FunctionalDependency(("Z",), ("B",)))

    def test_invalid_chunk_size_raises(self):
        relation = random_relation(seed=1, num_rows=10)
        with pytest.raises(ValueError, match="chunk_size"):
            compute_chunked(relation, FD, chunk_size=0)


# ----------------------------------------------------------------------
# Out-of-core ingest: ChunkedRelation
# ----------------------------------------------------------------------
class TestChunkedRelation:
    def test_round_trip_matches_relation(self):
        relation = null_relation(seed=7, num_rows=250)
        store = ChunkedRelation.from_relation(relation, chunk_size=64)
        assert store.attributes == relation.attributes
        assert store.num_rows == len(relation) == len(store)
        assert store.num_chunks == (250 + 63) // 64
        assert list(store.iter_rows()) == list(relation)
        assert store.to_relation() == relation

    def test_cardinality_and_null_count(self):
        store = ChunkedRelation(
            ("A", "B"),
            [(1, None), (2, "x"), (1, "x"), (None, "y")],
            chunk_size=2,
        )
        assert store.cardinality("A") == 2
        assert store.null_count("A") == 1
        assert store.cardinality("B") == 2
        assert store.null_count("B") == 1
        assert store.code_bytes() == 4 * 2 * 4  # 4 rows x 2 attrs x int32

    def test_decode_tables_first_occurrence_order(self):
        store = ChunkedRelation(("A",), [("b",), ("a",), ("b",), ("c",)], chunk_size=3)
        assert store.decode_tables()["A"] == ["b", "a", "c"]

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError, match="arity"):
            ChunkedRelation(("A", "B"), [(1, 2), (3,)])

    def test_read_csv_matches_materialised_read_csv(self, tmp_path):
        relation = null_relation(seed=13, num_rows=300)
        path = write_csv(relation, tmp_path / "data.csv")
        materialised = read_csv(path)
        streamed = ChunkedRelation.read_csv(path, chunk_size=71)
        assert streamed.attributes == materialised.attributes
        assert list(streamed.iter_rows()) == list(materialised)
        # ...and the statistics computed from the stream match too.
        fd = FunctionalDependency(("A",), ("B",))
        assert_identical(
            compute_chunked(streamed, fd), FdStatistics.compute(materialised, fd)
        )


# ----------------------------------------------------------------------
# CSV layer: NaN coercion, max_rows, gzip
# ----------------------------------------------------------------------
class TestCsvIngest:
    def test_nan_cells_become_null(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("A,B\nNaN,1\nnan,2\n-nan,3\n1.5,NaN\n")
        relation = read_csv(path)
        assert list(relation) == [(None, 1), (None, 2), (None, 3), (1.5, None)]

    def test_float_nan_coerces_to_null_even_without_marker(self, tmp_path):
        # "+NAN" is not in DEFAULT_NULL_MARKERS but parses to IEEE NaN;
        # the _coerce regression guard turns it into NULL anyway.
        path = tmp_path / "nan2.csv"
        path.write_text("A\n+NAN\n")
        assert list(read_csv(path)) == [(None,)]

    def test_max_rows_caps_ingest(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text("A,B\n" + "".join(f"{i},{i % 3}\n" for i in range(50)))
        assert len(read_csv(path, max_rows=10)) == 10
        assert read_csv(path, max_rows=0).num_rows == 0
        header, rows = stream_csv_rows(path, max_rows=5)
        assert header == ["A", "B"]
        assert len(list(rows)) == 5
        with pytest.raises(ValueError, match="max_rows"):
            read_csv(path, max_rows=-1)

    def test_gzip_round_trip(self, tmp_path):
        relation = random_relation(seed=19, num_rows=80)
        path = write_csv(relation, tmp_path / "data.csv.gz")
        with gzip.open(path, "rt") as handle:
            assert handle.readline().strip() == "A,B,C"
        assert list(read_csv(path)) == list(relation)
        assert list(ChunkedRelation.read_csv(path, chunk_size=17).iter_rows()) == list(
            relation
        )

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\n1,2\n3\n")
        with pytest.raises(ValueError, match="cells"):
            list(read_csv(path))


# ----------------------------------------------------------------------
# The out-of-core guarantee: streamed ingest stays below row-list peaks
# ----------------------------------------------------------------------
class TestPeakMemory:
    def test_streamed_ingest_peak_below_row_list_peak(self, tmp_path):
        num_rows = 60_000
        path = tmp_path / "large.csv"
        rng = random.Random(2)
        with path.open("w") as handle:
            handle.write("A,B\n")
            for _ in range(num_rows):
                key = rng.randrange(300)
                handle.write(f"key-{key},{key % 30}\n")

        fd = FunctionalDependency(("A",), ("B",))

        tracemalloc.start()
        store = ChunkedRelation.read_csv(path, chunk_size=4_096)
        chunked_stats = compute_chunked(store, fd)
        _, streamed_peak = tracemalloc.get_traced_memory()
        del store
        tracemalloc.stop()

        tracemalloc.start()
        relation = read_csv(path)
        monolithic_stats = FdStatistics.compute(relation, fd)
        _, materialised_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert chunked_stats == monolithic_stats
        # The streamed path never builds the row list: its peak must stay
        # well below the materialised one (4-byte codes vs row tuples).
        assert streamed_peak < materialised_peak * 0.6, (
            f"streamed peak {streamed_peak} not below materialised "
            f"peak {materialised_peak}"
        )


# ----------------------------------------------------------------------
# Array-keyed partials (the vectorised numpy merge path)
# ----------------------------------------------------------------------
@needs_numpy
class TestArrayPartials:
    """The array path is bit-identical to the tuple path — and selected
    exactly when the numpy backend runs with pack-safe cardinalities."""

    @pytest.mark.parametrize("builder", RELATION_BUILDERS)
    @pytest.mark.parametrize("chunk_size", [1, 7, 1000])
    def test_array_equals_tuple_partials(self, builder, chunk_size):
        relation = builder(seed=31)
        for fd in (FD, FunctionalDependency(("A", "C"), ("B",))):
            via_arrays = compute_chunked(
                relation, fd, chunk_size=chunk_size, backend="numpy",
                array_partials=True,
            )
            via_tuples = compute_chunked(
                relation, fd, chunk_size=chunk_size, backend="numpy",
                array_partials=False,
            )
            assert_identical(via_arrays, via_tuples)
            assert_identical(
                via_arrays, FdStatistics.compute(relation, fd, backend="numpy")
            )

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_array_partials_across_pool_jobs(self, jobs):
        relation = null_relation(seed=5, num_rows=700)
        chunked = compute_chunked(
            relation, FD, chunk_size=64, jobs=jobs, backend="numpy",
            array_partials=True,
        )
        assert_identical(chunked, FdStatistics.compute(relation, FD, backend="numpy"))

    def test_uses_array_partials_per_backend(self):
        relation = random_relation(seed=2)
        from repro.core.chunked import uses_array_partials

        assert uses_array_partials(relation, FD, backend="numpy") is True
        assert uses_array_partials(relation, FD, backend="python") is False

    def test_python_backend_force_raises(self):
        relation = random_relation(seed=3)
        with pytest.raises(ValueError, match="array partials"):
            compute_chunked(relation, FD, backend="python", array_partials=True)

    def test_pack_overflow_falls_back_to_tuple_partials(self):
        # 16 attributes x cardinality ~30 pushes the full-tuple radix
        # product past 2**62: the auto gate must degrade to tuple
        # partials (identical results), and forcing must refuse.
        from repro.core.chunked import uses_array_partials

        rng = random.Random(13)
        attributes = tuple(f"a{i}" for i in range(16))
        rows = [
            tuple(rng.randrange(30) for _ in attributes) for _ in range(300)
        ]
        relation = Relation(attributes, rows, name="wide")
        fd = FunctionalDependency(("a0",), ("a1",))
        assert uses_array_partials(relation, fd, backend="numpy") is False
        chunked = compute_chunked(relation, fd, chunk_size=50, backend="numpy")
        assert_identical(chunked, FdStatistics.compute(relation, fd, backend="numpy"))
        with pytest.raises(ValueError, match="array partials"):
            compute_chunked(relation, fd, backend="numpy", array_partials=True)

    def test_covering_fd_aliases_survive_merge(self):
        # Schema == lhs + rhs: per-chunk partials alias w arrays to xy
        # arrays, and the merge must preserve the aliasing (half the
        # merge work on the benchmark shape).
        import numpy as np

        from repro.core.backends import NumpyBackend
        from repro.core.partial import ArrayFdCounts
        from repro.relation.chunked import CodeChunk

        backend = NumpyBackend()
        fd = FunctionalDependency(("X",), ("Y",))
        radices = {"X": 5, "Y": 4}
        chunks = [
            CodeChunk(
                ("X", "Y"),
                {
                    "X": np.array([0, 1, 0], dtype=np.int32),
                    "Y": np.array([2, 0, 2], dtype=np.int32),
                },
                3,
            ),
            CodeChunk(
                ("X", "Y"),
                {
                    "X": np.array([1, 2], dtype=np.int32),
                    "Y": np.array([0, 1], dtype=np.int32),
                },
                2,
            ),
        ]
        partials = [backend.compute_partial_array(c, fd, radices) for c in chunks]
        assert all(p.covering for p in partials)
        merged = ArrayFdCounts.merge_all(partials)
        assert merged.covering
        assert merged.num_rows == 5
        assert merged.xy_counts.tolist() == [2, 2, 1]


# ----------------------------------------------------------------------
# Shared worker pool
# ----------------------------------------------------------------------
class TestSharedPool:
    def test_pool_reused_across_fds(self):
        from repro.core import chunked as chunked_module

        relation = random_relation(seed=7)
        chunked_module.shutdown_pool()
        before = chunked_module.pool_info()
        compute_chunked(relation, FD, chunk_size=32, jobs=2)
        compute_chunked(
            relation, FunctionalDependency(("A",), ("C",)), chunk_size=32, jobs=2
        )
        info = chunked_module.pool_info()
        assert info["active"] is True
        assert info["workers"] == 2
        assert info["spawns"] == before["spawns"] + 1
        assert info["reuses"] >= before["reuses"] + 1
        chunked_module.shutdown_pool()
        assert chunked_module.pool_info()["active"] is False

    def test_session_describe_exposes_pool_counters(self):
        from repro.service.session import AfdSession

        session = AfdSession(random_relation(seed=8))
        pool = session.describe()["pool"]
        assert set(pool) == {"active", "workers", "spawns", "reuses"}


# ----------------------------------------------------------------------
# Gzip magic-byte sniffing
# ----------------------------------------------------------------------
class TestGzipSniffing:
    def test_gzip_bytes_under_csv_extension(self, tmp_path):
        # A mislabeled file: gzip content, plain .csv name.
        path = tmp_path / "mislabeled.csv"
        path.write_bytes(gzip.compress(b"A,B\n1,x\n2,y\n"))
        relation = read_csv(path)
        assert relation.rows() == [(1, "x"), (2, "y")]
        store = ChunkedRelation.read_csv(path, chunk_size=1)
        assert list(store.iter_rows()) == relation.rows()

    def test_plain_text_under_gz_extension(self, tmp_path):
        # The opposite lie: plain CSV renamed to .gz.
        path = tmp_path / "mislabeled.csv.gz"
        path.write_text("A,B\n1,x\n")
        relation = read_csv(path)
        assert relation.rows() == [(1, "x")]

    def test_write_still_honours_gz_extension(self, tmp_path):
        path = tmp_path / "out.csv.gz"
        write_csv(Relation(("A",), [(1,), (2,)]), path)
        with gzip.open(path, "rt") as handle:
            assert handle.read().splitlines() == ["A", "1", "2"]


# ----------------------------------------------------------------------
# Parquet ingest (optional pyarrow)
# ----------------------------------------------------------------------
HAVE_PYARROW = True
try:
    import pyarrow  # noqa: F401
    import pyarrow.parquet  # noqa: F401
except ImportError:
    HAVE_PYARROW = False


class TestParquetIngest:
    def test_missing_pyarrow_raises_actionable_import_error(self, monkeypatch, tmp_path):
        import sys

        monkeypatch.setitem(sys.modules, "pyarrow", None)
        monkeypatch.setitem(sys.modules, "pyarrow.parquet", None)
        with pytest.raises(ImportError, match="pyarrow"):
            ChunkedRelation.read_parquet(tmp_path / "whatever.parquet")

    @pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
    def test_read_parquet_matches_streamed_csv(self, tmp_path):  # pragma: no cover
        import pyarrow as pa
        import pyarrow.parquet as pq

        table = pa.table(
            {
                "A": [1, 2, None, 1],
                "B": ["x", None, "y", "x"],
                "C": [0.5, float("nan"), 1.5, 0.5],
            }
        )
        path = tmp_path / "demo.parquet"
        pq.write_table(table, path)
        store = ChunkedRelation.read_parquet(path, chunk_size=2)
        assert store.name == "demo"
        assert store.attributes == ("A", "B", "C")
        # NaN floats coerce to NULL, like the CSV reader.
        assert list(store.iter_rows()) == [
            (1, "x", 0.5),
            (2, None, None),
            (None, "y", 1.5),
            (1, "x", 0.5),
        ]
        restricted = ChunkedRelation.read_parquet(path, columns=("B",), max_rows=2)
        assert restricted.attributes == ("B",)
        assert list(restricted.iter_rows()) == [("x",), (None,)]
