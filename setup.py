"""Setuptools shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on machines that
cannot build wheels (e.g. offline environments without the wheel module).
"""

from setuptools import setup

setup()
